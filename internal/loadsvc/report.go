package loadsvc

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Report is one scenario run's result set: request accounting, the
// open-loop latency quantiles, the service-side aggregates, and the
// per-primitive telemetry deltas scraped over HTTP. It is the JSON row
// the bench_tail.json "scenarios" section carries.
type Report struct {
	Scenario        string  `json:"scenario"`
	Seed            uint64  `json:"seed"`
	RatePerSec      int     `json:"rate_per_sec"`
	DurationSeconds float64 `json:"duration_seconds"`
	Workers         int     `json:"workers"`
	Virtual         bool    `json:"virtual,omitempty"`

	Requests       int64 `json:"requests"`
	Fresh          int64 `json:"fresh"`
	Stale          int64 `json:"stale"`
	Cancelled      int64 `json:"cancelled"`
	Errors         int64 `json:"errors"`
	WorkersSpawned int64 `json:"workers_spawned"`
	// LostWaiters is nonzero only when the stranded-waiter guard fired:
	// some worker was still blocked in a primitive long after the last
	// arrival. It must be 0 on every healthy run; cmd/loadgen exits
	// nonzero otherwise.
	LostWaiters int `json:"lost_waiters"`

	CancelledRate float64 `json:"cancelled_rate"`
	StaleRate     float64 `json:"stale_rate"`

	// Latency quantiles over completed (fresh + stale) requests,
	// microseconds, measured open-loop from each request's scheduled
	// arrival.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`

	// HitCount and PeakLatencyNs are read back from the service's own
	// reactive aggregates (Counter and max-FetchOp) after the run.
	HitCount      int64 `json:"hit_count"`
	PeakLatencyNs int64 `json:"peak_latency_ns"`

	// Primitives holds the per-primitive Stats.Sub deltas for the run,
	// scraped through /debug/reactive.
	Primitives map[string]PrimitiveDelta `json:"primitives,omitempty"`

	// Sub holds per-GOMAXPROCS rows for sweep scenarios.
	Sub []SubReport `json:"sub,omitempty"`

	// Hist is the merged latency histogram (nanosecond log₂ buckets);
	// quantiles above derive from it. Not serialized: the JSON schema
	// carries the quantiles, the tests compare the buckets.
	Hist *stats.WaitProfile `json:"-"`
}

// PrimitiveDelta summarizes one primitive's scraped telemetry over the
// run: the final mode, the protocol switches committed during the run
// (a Stats.Sub delta), parked waiters at scrape time, and the reader
// engine's counterpart values for RWMutex.
type PrimitiveDelta struct {
	Mode           string `json:"mode"`
	Switches       uint64 `json:"switches"`
	Waiters        int    `json:"waiters"`
	ReaderMode     string `json:"reader_mode,omitempty"`
	ReaderSwitches uint64 `json:"reader_switches,omitempty"`
}

// SubReport is one slice of a sweep scenario: a GOMAXPROCS setting
// (Procs) or a forced routing-map protocol (Mode), whichever the sweep
// varies.
type SubReport struct {
	Procs    int     `json:"procs,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Requests int64   `json:"requests"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	P999Us   float64 `json:"p999_us"`
	MaxUs    float64 `json:"max_us"`
}

func newReport(scenario string, o Options) *Report {
	return &Report{
		Scenario:        scenario,
		RatePerSec:      o.Rate,
		DurationSeconds: o.Duration.Seconds(),
		Workers:         o.Workers,
		Virtual:         o.Virtual,
		Hist:            &stats.WaitProfile{Name: scenario},
	}
}

// absorb folds one worker lane's tally into the report.
func (r *Report) absorb(t *tally) {
	r.Fresh += t.counts[classFresh]
	r.Stale += t.counts[classStale]
	r.Cancelled += t.counts[classCancelled]
	r.Errors += t.counts[classError]
	r.WorkersSpawned += t.spawned
	for i, c := range t.hist.Buckets {
		r.Hist.Buckets[i] += c
	}
	if m := t.hist.Sample.Max(); m > r.MaxUs {
		r.MaxUs = m // still in ns here; finish converts
	}
}

// merge folds a completed sub-run into an aggregate report (sweeps).
func (r *Report) merge(sub *Report) {
	r.Seed = sub.Seed
	r.Fresh += sub.Fresh
	r.Stale += sub.Stale
	r.Cancelled += sub.Cancelled
	r.Errors += sub.Errors
	r.WorkersSpawned += sub.WorkersSpawned
	r.LostWaiters += sub.LostWaiters
	r.HitCount += sub.HitCount
	if sub.PeakLatencyNs > r.PeakLatencyNs {
		r.PeakLatencyNs = sub.PeakLatencyNs
	}
	for i, c := range sub.Hist.Buckets {
		r.Hist.Buckets[i] += c
	}
	if sub.MaxUs*1000 > r.MaxUs { // sub is finished (µs); r.MaxUs still ns
		r.MaxUs = sub.MaxUs * 1000
	}
	if r.Primitives == nil {
		r.Primitives = make(map[string]PrimitiveDelta, len(sub.Primitives))
	}
	for name, d := range sub.Primitives {
		prev := r.Primitives[name]
		prev.Mode, prev.ReaderMode = d.Mode, d.ReaderMode
		prev.Switches += d.Switches
		prev.ReaderSwitches += d.ReaderSwitches
		prev.Waiters = d.Waiters
		r.Primitives[name] = prev
	}
}

// finish derives the counters and quantiles that depend on the full
// merged histogram. MaxUs is accumulated in nanoseconds during
// absorb/merge and converted here.
func (r *Report) finish() {
	r.Requests = r.Fresh + r.Stale + r.Cancelled + r.Errors
	if r.Requests > 0 {
		r.CancelledRate = float64(r.Cancelled) / float64(r.Requests)
		r.StaleRate = float64(r.Stale) / float64(r.Requests)
	}
	const us = 1000.0
	r.MaxUs /= us
	// A quantile interpolated inside the top bucket can land past the
	// true maximum (the bucket's ceiling is its upper bound); clamp so
	// the reported trajectory stays monotone: p50 ≤ p99 ≤ p999 ≤ max.
	clamp := func(v float64) float64 {
		if r.MaxUs > 0 && v > r.MaxUs {
			return r.MaxUs
		}
		return v
	}
	r.P50Us = clamp(r.Hist.Quantile(0.5) / us)
	r.P99Us = clamp(r.Hist.Quantile(0.99) / us)
	r.P999Us = clamp(r.Hist.Quantile(0.999) / us)
}

// TailRow is one gate-ready measurement of the tail-latency trajectory:
// a slash-separated name and a value in microseconds — the flat unit
// cmd/benchcmp -tail diffs and thresholds.
type TailRow struct {
	Name string  `json:"name"`
	Us   float64 `json:"us"`
}

// TailRows flattens the report's quantiles into gate rows:
// scenario/p50, /p99, /p999, /max, plus per-slice rows for sweep
// sub-reports (scenario/procs=N/p99 for GOMAXPROCS sweeps,
// scenario/mode=epoch/p99 for routing-map protocol sweeps).
func (r *Report) TailRows() []TailRow {
	rows := []TailRow{
		{r.Scenario + "/p50", r.P50Us},
		{r.Scenario + "/p99", r.P99Us},
		{r.Scenario + "/p999", r.P999Us},
		{r.Scenario + "/max", r.MaxUs},
	}
	for _, s := range r.Sub {
		prefix := fmt.Sprintf("%s/procs=%d/", r.Scenario, s.Procs)
		if s.Mode != "" {
			prefix = fmt.Sprintf("%s/mode=%s/", r.Scenario, s.Mode)
		}
		rows = append(rows,
			TailRow{prefix + "p50", s.P50Us},
			TailRow{prefix + "p99", s.P99Us},
			TailRow{prefix + "p999", s.P999Us},
			TailRow{prefix + "max", s.MaxUs},
		)
	}
	return rows
}

// TailDoc is the bench_tail.json document: the rich per-scenario
// reports plus the flat µs rows benchcmp gates. Schema names the layout
// so future format changes stay detectable.
type TailDoc struct {
	Schema    string    `json:"schema"`
	Scenarios []*Report `json:"scenarios"`
	Tail      []TailRow `json:"tail"`
}

// TailSchema is the current bench_tail.json schema tag.
const TailSchema = "bench_tail/v1"

// BuildTailDoc assembles the document for a set of scenario reports.
func BuildTailDoc(reports []*Report) *TailDoc {
	doc := &TailDoc{Schema: TailSchema, Scenarios: reports}
	for _, r := range reports {
		doc.Tail = append(doc.Tail, r.TailRows()...)
	}
	return doc
}

// GuardDefault is the default stranded-waiter guard, exported for
// cmd/loadgen's flag help.
const GuardDefault = 10 * time.Second
