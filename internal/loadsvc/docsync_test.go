package loadsvc

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// experimentsDoc locates the repository-level EXPERIMENTS.md relative to
// this package (the same layout assumption as the experiment registry's
// doc-sync test).
const experimentsDoc = "../../EXPERIMENTS.md"

// scenarioRow matches a table row of the load-scenario matrix whose
// first cell is a backticked scenario name: | `read-heavy` | ... |
var scenarioRow = regexp.MustCompile("^\\| *`([^`]+)` *\\|")

// readScenarioTable parses the "## Load scenarios" section of
// EXPERIMENTS.md and returns the scenario names its table documents, in
// order.
func readScenarioTable(t *testing.T) []string {
	t.Helper()
	f, err := os.Open(filepath.FromSlash(experimentsDoc))
	if err != nil {
		t.Fatalf("EXPERIMENTS.md not readable: %v", err)
	}
	defer f.Close()

	var names []string
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Load scenarios")
			continue
		}
		if !inSection {
			continue
		}
		if m := scenarioRow.FindStringSubmatch(line); m != nil {
			names = append(names, m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestLoadScenarioTableInSync keeps EXPERIMENTS.md honest the way
// TestExperimentIndexInSync does for the simulator matrix: every
// scenario in the load matrix must have a row in the "## Load
// scenarios" table, in canonical order, and every row must name a real
// scenario.
func TestLoadScenarioTableInSync(t *testing.T) {
	documented := readScenarioTable(t)
	if len(documented) == 0 {
		t.Fatal("EXPERIMENTS.md has no '## Load scenarios' table rows")
	}
	registered := ScenarioNames()
	if len(documented) != len(registered) {
		t.Fatalf("EXPERIMENTS.md documents %d scenarios, matrix has %d:\ndoc: %v\ngot: %v",
			len(documented), len(registered), documented, registered)
	}
	for i, name := range registered {
		if documented[i] != name {
			t.Errorf("row %d: EXPERIMENTS.md says %q, matrix says %q (order is canonical)",
				i, documented[i], name)
		}
	}
}
