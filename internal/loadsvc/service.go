// Package loadsvc is the service-scale load harness behind cmd/loadgen:
// an in-process RPC-shaped service assembled entirely from the public
// reactive primitives, a deterministic scenario/plan generator, and an
// open-loop executor that drives the service at fixed arrival rates and
// reports tail-latency quantiles.
//
// The service is deliberately the workload the paper's primitives are
// for: every request bumps a hit counter (reactive.Counter), reads
// consult a routing table under a per-request RLockCtx deadline and
// degrade to an atomically-published stale snapshot when the deadline
// expires (reactive.RWMutex), writes append to a commit journal under
// Mutex.LockCtx before taking the table's write lock, and every
// completed request folds its latency into a max-aggregating
// reactive.FetchOp. All four primitives are named in a
// reactivehttp.Registry, so the executor scrapes their per-scenario
// Stats.Sub deltas through the /debug/reactive endpoint exactly the way
// a production scraper would.
//
// The executor is open-loop (arrivals are scheduled by the plan, not by
// request completion), so queueing delay under overload is measured
// rather than absorbed — the methodological difference from the
// closed-loop ns/op benchmarks is discussed in DESIGN.md §7.
package loadsvc

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"

	"repro/reactive"
	"repro/reactive/reactivehttp"
)

// TableKeys is the routing-table key space. Small enough that snapshot
// publication is cheap, large enough that per-key contention is rare —
// contention in the harness comes from the lock protocols, not from one
// hot key.
const TableKeys = 256

// snapshotEvery is the write-path snapshot publication cadence: every
// snapshotEvery-th Put republishes the stale-read snapshot (Rebuild
// always republishes). The fallback data a degraded read serves is
// therefore at most snapshotEvery writes old.
const snapshotEvery = 16

// Service is the in-process RPC-shaped service the load harness drives.
// All four public reactive primitives are load-bearing: hits on every
// request, router on every read and write, journal on every write, peak
// on every completed request.
type Service struct {
	router  *reactive.RWMutex // guards table; readers carry deadlines
	journal *reactive.Mutex   // serializes the commit journal (write path)
	hits    *reactive.Counter // total requests accepted
	peak    *reactive.FetchOp // max-aggregated request latency (ns)

	table map[uint64]uint64                 // guarded by router
	puts  int                               // guarded by router: snapshot cadence
	snap  atomic.Pointer[map[uint64]uint64] // last published immutable snapshot

	logLen int64 // guarded by journal: committed journal entries

	reg *reactivehttp.Registry
}

// NewService builds a Service with a fully populated routing table, a
// published snapshot, and all four primitives registered for telemetry
// under the names "router", "journal", "hits", and "peak".
func NewService() *Service { return NewServiceFor(Spec{}) }

// NewServiceFor builds a Service shaped by scenario sc: a nonzero
// Spec.RouterMode starts the router's reader-registration protocol in
// that mode (the epoch scenario forces ModeEpoch so the harness
// measures the epoch read path regardless of whether the host's
// parallelism would promote it). The router stays fully adaptive
// afterward — the forcing is an initial condition, not a pin.
func NewServiceFor(sc Spec) *Service {
	var ropts []reactive.Option
	if sc.RouterMode != 0 {
		ropts = append(ropts, reactive.WithInitialReaderMode(sc.RouterMode))
	}
	s := &Service{
		router:  reactive.NewRWMutex(ropts...),
		journal: reactive.New(),
		hits:    reactive.NewCounter(),
		peak: reactive.NewFetchOp(func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}, math.MinInt64),
		table: make(map[uint64]uint64, TableKeys),
		reg:   &reactivehttp.Registry{},
	}
	for k := uint64(0); k < TableKeys; k++ {
		s.table[k] = k * k
	}
	s.publish()
	s.reg.Register("router", s.router)
	s.reg.Register("journal", s.journal)
	s.reg.Register("hits", s.hits)
	s.reg.Register("peak", s.peak)
	return s
}

// Registry exposes the service's named primitives for telemetry export.
func (s *Service) Registry() *reactivehttp.Registry { return s.reg }

// publish copies the table into a fresh immutable snapshot for the
// degraded-read path. Callers must hold the write lock (or, in
// NewService, have exclusive access by construction).
func (s *Service) publish() {
	c := make(map[uint64]uint64, len(s.table))
	for k, v := range s.table {
		c[k] = v
	}
	s.snap.Store(&c)
}

// GetResult is a read's outcome: the routed value and whether it was
// served from the live table or the stale snapshot.
type GetResult struct {
	Val   uint64
	Stale bool
}

// Get routes one read. The read lock is taken with the request's
// context; a deadline expiry degrades to the last published snapshot
// (stale routing beats no routing), while an outright cancellation —
// the client has gone away — aborts the request with ctx.Err(). work
// models the request's service time in spin iterations, spent while
// the routing entry is held so read-side critical sections have
// realistic width.
func (s *Service) Get(ctx context.Context, key uint64, work uint32) (GetResult, error) {
	s.hits.Add(1)
	if err := s.router.RLockCtx(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			v := (*s.snap.Load())[key%TableKeys]
			spinWork(work)
			return GetResult{Val: v, Stale: true}, nil
		}
		return GetResult{}, err
	}
	v := s.table[key%TableKeys]
	spinWork(work)
	s.router.RUnlock()
	return GetResult{Val: v}, nil
}

// Put routes one write: append to the commit journal under the journal
// mutex (the Mutex.LockCtx write path), then install the new routing
// entry under the table's write lock. Either acquisition gives up with
// ctx.Err() when the request's context ends first.
func (s *Service) Put(ctx context.Context, key, val uint64, work uint32) error {
	s.hits.Add(1)
	if err := s.journal.LockCtx(ctx); err != nil {
		return err
	}
	s.logLen++
	spinWork(work / 2)
	s.journal.Unlock()

	if err := s.router.LockCtx(ctx); err != nil {
		return err
	}
	s.table[key%TableKeys] = val
	spinWork(work)
	s.puts++
	if s.puts%snapshotEvery == 0 {
		s.publish()
	}
	s.router.Unlock()
	return nil
}

// Rebuild recomputes the whole routing table under the write lock — the
// slow bulk update that makes concurrent reads blow their deadlines and
// exercise the stale-snapshot path — then republishes the snapshot.
func (s *Service) Rebuild(ctx context.Context, gen uint64, work uint32) error {
	s.hits.Add(1)
	if err := s.router.LockCtx(ctx); err != nil {
		return err
	}
	for k := uint64(0); k < TableKeys; k++ {
		s.table[k] = k*k + gen
	}
	spinWorkYielding(work)
	s.publish()
	s.router.Unlock()
	return nil
}

// RecordLatency folds one completed request's latency into the
// max-aggregating FetchOp — the aggregation path every request's
// completion contends on.
func (s *Service) RecordLatency(ns int64) { s.peak.Apply(ns) }

// PeakLatency reconciles and returns the maximum latency recorded so
// far, or 0 when nothing completed yet.
func (s *Service) PeakLatency() int64 {
	v := s.peak.Value()
	if v == math.MinInt64 {
		return 0
	}
	return v
}

// Hits reconciles and returns the total requests accepted.
func (s *Service) Hits() int64 { return s.hits.Load() }

// JournalLen returns the committed journal length (test hook; takes the
// journal mutex).
func (s *Service) JournalLen() int64 {
	s.journal.Lock()
	n := s.logLen
	s.journal.Unlock()
	return n
}

// spinSink defeats dead-code elimination of spinWork's loop.
var spinSink atomic.Uint64

// spinWork burns roughly iters cycles of CPU as synthetic service time.
// A xorshift step per iteration keeps the loop data-dependent so the
// compiler cannot collapse it.
func spinWork(iters uint32) {
	x := uint64(iters) | 1
	for i := uint32(0); i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}

// spinWorkYielding burns iters cycles in scheduler-cooperative chunks —
// the shape of a bulk rebuild, which allocates and pages rather than
// monopolizing a P. Yielding matters on small-GOMAXPROCS hosts: a
// non-yielding multi-millisecond spin would freeze every other
// goroutine out of even *starting* its deadline-bounded acquisition, and
// the degraded-read path would go unexercised exactly where it is most
// interesting.
func spinWorkYielding(iters uint32) {
	const chunk = 20000
	for iters > chunk {
		spinWork(chunk)
		runtime.Gosched()
		iters -= chunk
	}
	spinWork(iters)
}
