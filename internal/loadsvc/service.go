// Package loadsvc is the service-scale load harness behind cmd/loadgen:
// an in-process RPC-shaped service assembled entirely from the public
// reactive primitives, a deterministic scenario/plan generator, and an
// open-loop executor that drives the service at fixed arrival rates and
// reports tail-latency quantiles.
//
// The service is deliberately the workload the paper's primitives are
// for: every request bumps a hit counter (reactive.Counter), reads
// route through an adaptive hash map under a per-request GetCtx
// deadline and degrade to an atomically-published stale snapshot when
// the deadline expires (reactive.Map — the routing table IS the
// adaptive data structure, walking locked ↔ sharded ↔ epoch as the
// read/write mix shifts), writes append to a commit journal under
// Mutex.LockCtx before installing the new routing entry, and every
// completed request folds its latency into a max-aggregating
// reactive.FetchOp. All four primitives are named in a
// reactivehttp.Registry, so the executor scrapes their per-scenario
// Stats.Sub deltas through the /debug/reactive endpoint exactly the way
// a production scraper would.
//
// The executor is open-loop (arrivals are scheduled by the plan, not by
// request completion), so queueing delay under overload is measured
// rather than absorbed — the methodological difference from the
// closed-loop ns/op benchmarks is discussed in DESIGN.md §7.
package loadsvc

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"

	"repro/reactive"
	"repro/reactive/reactivehttp"
)

// TableKeys is the routing-table key space. Small enough that snapshot
// publication is cheap, large enough that per-key contention is rare —
// contention in the harness comes from the map's protocols, not from
// one hot key.
const TableKeys = 256

// snapshotEvery is the write-path snapshot publication cadence: every
// snapshotEvery-th Put republishes the stale-read snapshot (Rebuild
// always republishes). The fallback data a degraded read serves is
// therefore at most snapshotEvery writes old.
const snapshotEvery = 16

// Service is the in-process RPC-shaped service the load harness drives.
// All four public reactive primitives are load-bearing: hits on every
// request, routes on every read and write, journal on every write, peak
// on every completed request.
type Service struct {
	routes  *reactive.Map[uint64, uint64] // the routing table; adaptive end to end
	journal *reactive.Mutex               // serializes the commit journal (write path)
	hits    *reactive.Counter             // total requests accepted
	peak    *reactive.FetchOp             // max-aggregated request latency (ns)

	puts   int                               // guarded by journal: snapshot cadence
	snap   atomic.Pointer[map[uint64]uint64] // last published immutable snapshot
	logLen int64                             // guarded by journal: committed journal entries

	reg *reactivehttp.Registry
}

// NewService builds a Service with a fully populated routing table, a
// published snapshot, and all four primitives registered for telemetry
// under the names "router", "journal", "hits", and "peak".
func NewService() *Service { return NewServiceFor(Spec{}) }

// NewServiceFor builds a Service shaped by scenario sc: a nonzero
// Spec.RouterMode starts the routing map in that protocol (ModeLocked,
// ModeSharded, or ModeEpoch — the epoch scenarios force ModeEpoch so
// the harness measures the published-table read path regardless of
// whether the host's parallelism would promote it). The map stays fully
// adaptive afterward — the forcing is an initial condition, not a pin.
func NewServiceFor(sc Spec) *Service {
	var ropts []reactive.Option
	if sc.RouterMode != 0 {
		ropts = append(ropts, reactive.WithInitialMode(sc.RouterMode))
	}
	s := &Service{
		routes:  reactive.NewMap[uint64, uint64](ropts...),
		journal: reactive.New(),
		hits:    reactive.NewCounter(),
		peak: reactive.NewFetchOp(func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}, math.MinInt64),
		reg: &reactivehttp.Registry{},
	}
	for k := uint64(0); k < TableKeys; k++ {
		s.routes.Put(k, k*k)
	}
	s.publish()
	s.reg.Register("router", s.routes)
	s.reg.Register("journal", s.journal)
	s.reg.Register("hits", s.hits)
	s.reg.Register("peak", s.peak)
	return s
}

// Registry exposes the service's named primitives for telemetry export.
func (s *Service) Registry() *reactivehttp.Registry { return s.reg }

// RouterStats exposes the routing map's extended gauges (mode, shards,
// table version, journal depth) for reports and tests.
func (s *Service) RouterStats() reactive.MapStats { return s.routes.MapStats() }

// publish copies the routing table into a fresh immutable snapshot for
// the degraded-read path. The copy is a weakly consistent Range — the
// snapshot is advertised as stale data, so tearing against concurrent
// writes is within contract.
func (s *Service) publish() {
	c := make(map[uint64]uint64, TableKeys)
	s.routes.Range(func(k, v uint64) bool {
		c[k] = v
		return true
	})
	s.snap.Store(&c)
}

// GetResult is a read's outcome: the routed value and whether it was
// served from the live table or the stale snapshot.
type GetResult struct {
	Val   uint64
	Stale bool
}

// Get routes one read. The lookup runs with the request's context; a
// deadline expiry while the map's current protocol would block (the
// locked mode's writer lock, a sharded mode's shard word) degrades to
// the last published snapshot (stale routing beats no routing), while
// an outright cancellation — the client has gone away — aborts the
// request with ctx.Err(). In the epoch mode the lookup reads the
// published table without blocking, so degraded reads vanish — exactly
// the property the map's read-mostly protocol exists for. work models
// the request's service time in spin iterations.
func (s *Service) Get(ctx context.Context, key uint64, work uint32) (GetResult, error) {
	s.hits.Add(1)
	v, _, err := s.routes.GetCtx(ctx, key%TableKeys)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			v := (*s.snap.Load())[key%TableKeys]
			spinWork(work)
			return GetResult{Val: v, Stale: true}, nil
		}
		return GetResult{}, err
	}
	spinWork(work)
	return GetResult{Val: v}, nil
}

// Put routes one write: append to the commit journal under the journal
// mutex (the Mutex.LockCtx write path), then install the new routing
// entry through the map's cancellable write path. Either acquisition
// gives up with ctx.Err() when the request's context ends first.
func (s *Service) Put(ctx context.Context, key, val uint64, work uint32) error {
	s.hits.Add(1)
	if err := s.journal.LockCtx(ctx); err != nil {
		return err
	}
	s.logLen++
	s.puts++
	republish := s.puts%snapshotEvery == 0
	spinWork(work / 2)
	s.journal.Unlock()

	if err := s.routes.PutCtx(ctx, key%TableKeys, val); err != nil {
		return err
	}
	spinWork(work)
	if republish {
		s.publish()
	}
	return nil
}

// Rebuild recomputes the whole routing table — the slow bulk update.
// Each entry goes through the map's cancellable write path with the
// rebuild's service time spread between entries, so the burst holds the
// write side busy long enough that concurrent reads blow their
// deadlines in the blocking modes (and sail through in the epoch mode,
// at the price of a grace period per entry) — then republishes the
// snapshot.
func (s *Service) Rebuild(ctx context.Context, gen uint64, work uint32) error {
	s.hits.Add(1)
	chunk := work / TableKeys
	for k := uint64(0); k < TableKeys; k++ {
		if err := s.routes.PutCtx(ctx, k, k*k+gen); err != nil {
			return err
		}
		spinWork(chunk)
		if k%32 == 31 {
			runtime.Gosched()
		}
	}
	s.publish()
	return nil
}

// RecordLatency folds one completed request's latency into the
// max-aggregating FetchOp — the aggregation path every request's
// completion contends on.
func (s *Service) RecordLatency(ns int64) { s.peak.Apply(ns) }

// PeakLatency reconciles and returns the maximum latency recorded so
// far, or 0 when nothing completed yet.
func (s *Service) PeakLatency() int64 {
	v := s.peak.Value()
	if v == math.MinInt64 {
		return 0
	}
	return v
}

// Hits reconciles and returns the total requests accepted.
func (s *Service) Hits() int64 { return s.hits.Load() }

// JournalLen returns the committed journal length (test hook; takes the
// journal mutex).
func (s *Service) JournalLen() int64 {
	s.journal.Lock()
	n := s.logLen
	s.journal.Unlock()
	return n
}

// spinSink defeats dead-code elimination of spinWork's loop.
var spinSink atomic.Uint64

// spinWork burns roughly iters cycles of CPU as synthetic service time.
// A xorshift step per iteration keeps the loop data-dependent so the
// compiler cannot collapse it.
func spinWork(iters uint32) {
	x := uint64(iters) | 1
	for i := uint32(0); i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}

// spinWorkYielding burns iters cycles in scheduler-cooperative chunks —
// the shape of a bulk rebuild, which allocates and pages rather than
// monopolizing a P. Yielding matters on small-GOMAXPROCS hosts: a
// non-yielding multi-millisecond spin would freeze every other
// goroutine out of even *starting* its deadline-bounded acquisition, and
// the degraded-read path would go unexercised exactly where it is most
// interesting.
func spinWorkYielding(iters uint32) {
	const chunk = 20000
	for iters > chunk {
		spinWork(chunk)
		runtime.Gosched()
		iters -= chunk
	}
	spinWork(iters)
}
