package loadsvc

import (
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/reactive"
)

// OpKind identifies one request's operation against the Service.
type OpKind uint8

const (
	// OpGet is a deadline-bounded read of the routing table.
	OpGet OpKind = iota
	// OpPut is a journal append plus a single-entry table update.
	OpPut
	// OpRebuild is a bulk table rebuild holding the write lock long
	// enough that concurrent reads miss their deadlines.
	OpRebuild
)

// Req is one scheduled request in a Plan. At is the open-loop arrival
// offset from the run's start: the driver dispatches the request at that
// instant regardless of how far behind the service is, and latency is
// measured from At, so queueing delay shows up in the histogram.
type Req struct {
	At          time.Duration
	Kind        OpKind
	Key         uint64
	Val         uint64
	Work        uint32        // synthetic service time, spin iterations
	Deadline    time.Duration // > 0: per-request deadline (reads degrade to stale)
	CancelAfter time.Duration // > 0: client disconnects this long after arrival
	CancelNow   bool          // client gone before service even starts
}

// Spec names one scenario of the load matrix and its shape defaults.
// The specs returned by Scenarios are the harness's scenario matrix;
// EXPERIMENTS.md's "Load scenarios" table documents them and a doc-sync
// test keeps the two lists identical.
type Spec struct {
	Name        string
	Mix         string          // op mix, one line, for -list and the docs table
	Stress      string          // what the scenario is designed to expose
	DefaultRate int             // arrivals per second when Options.Rate == 0
	ChurnEvery  int             // > 0: worker goroutines retire after this many requests
	Procs       []int           // non-empty: run the plan once per GOMAXPROCS setting
	RouterMode  reactive.Mode   // nonzero: force the routing map's initial protocol
	RouterModes []reactive.Mode // non-empty: run the plan once per forced routing-map protocol
}

// Scenarios returns the load-scenario matrix in its canonical order.
func Scenarios() []Spec {
	return []Spec{
		{
			Name:        "read-heavy",
			Mix:         "95% get (2ms deadline) / 5% put",
			Stress:      "reader-path adaptivity: sharded registration and spin/park under steady load",
			DefaultRate: 3000,
		},
		{
			Name:        "read-heavy-epoch",
			Mix:         "95% get (2ms deadline) / 5% put; routing map forced to epoch",
			Stress:      "epoch-stamp read path and writer grace periods under steady load",
			DefaultRate: 3000,
			RouterMode:  reactive.ModeEpoch,
		},
		{
			Name:        "write-burst",
			Mix:         "steady 90/10 get/put; every 250ms a 40ms burst of puts + bulk rebuilds",
			Stress:      "stale-snapshot degradation while rebuilds hold the write lock",
			DefaultRate: 2500,
		},
		{
			Name:        "cancellation-storm",
			Mix:         "70% get with client disconnects (3% pre-cancelled) / 20% put / 10% rebuild",
			Stress:      "LockCtx/RLockCtx cancellation racing handoffs; zero lost wakeups required",
			DefaultRate: 2500,
		},
		{
			Name:        "goroutine-churn",
			Mix:         "read-heavy mix; each worker goroutine retires after 32 requests",
			Stress:      "park/wake and per-P affinity under constantly fresh goroutine identities",
			DefaultRate: 2500,
			ChurnEvery:  32,
		},
		{
			Name:        "gomaxprocs-sweep",
			Mix:         "read-heavy mix repeated at GOMAXPROCS 1, 2, 4 (and NumCPU if larger)",
			Stress:      "trajectory of the same workload across parallelism levels",
			DefaultRate: 2000,
			Procs:       sweepProcs(),
		},
		{
			Name:        "map-read-heavy",
			Mix:         "95% get (2ms deadline) / 5% put, repeated with the routing map forced to locked, sharded, and epoch",
			Stress:      "the same mix across all three Map protocols; epoch's published-table reads should erase degraded reads",
			DefaultRate: 3000,
			RouterModes: []reactive.Mode{reactive.ModeLocked, reactive.ModeSharded, reactive.ModeEpoch},
		},
	}
}

// ScenarioNames returns the matrix's names in canonical order.
func ScenarioNames() []string {
	specs := Scenarios()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Lookup finds a scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// sweepProcs is the GOMAXPROCS sweep set: the fixed rungs 1, 2, 4 so
// baselines stay row-comparable across hosts, plus the host's NumCPU
// when it is larger (that row is host-specific; benchcmp -tail reports
// it as new/removed rather than erroring when hosts differ).
func sweepProcs() []int {
	procs := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		procs = append(procs, n)
	}
	sort.Ints(procs)
	return procs
}

// Options shape one scenario run. The zero value means "scenario
// defaults": DefaultRate arrivals/sec, 2s duration, 16 workers, seed 1,
// a 10s stranded-waiter guard, live execution.
type Options struct {
	Rate     int           // arrivals per second (0: Spec.DefaultRate)
	Duration time.Duration // scheduled arrival window (0: 2s)
	Workers  int           // concurrent worker lanes (0: 16)
	Seed     uint64        // base seed; per-scenario seeds derive from it (0: 1)
	Virtual  bool          // replay deterministically instead of driving the live service
	Guard    time.Duration // stranded-waiter timeout after the last arrival (0: 10s)
}

func (o Options) withDefaults(sc Spec) Options {
	if o.Rate == 0 {
		o.Rate = sc.DefaultRate
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Workers == 0 {
		o.Workers = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Guard == 0 {
		o.Guard = 10 * time.Second
	}
	return o
}

// Plan is a fully materialized request schedule: everything about the
// run except wall-clock execution. Plans are deterministic — BuildPlan
// derives the scenario's RNG seed from (Options.Seed, scenario name)
// with the experiment registry's idiom, so the same options always
// produce byte-identical plans regardless of host or run order.
type Plan struct {
	Scenario   string
	Seed       uint64 // the derived per-scenario seed
	Rate       int
	Duration   time.Duration
	ChurnEvery int
	Reqs       []Req
}

// planSeed derives the per-scenario plan seed, reusing
// experiments.ExperimentSeed so load scenarios and simulator experiments
// share one seed-derivation idiom.
func planSeed(base uint64, scenario string) uint64 {
	return experiments.ExperimentSeed(base, "loadgen/"+scenario)
}

// BuildPlan materializes sc's request schedule under o.
func BuildPlan(sc Spec, o Options) Plan {
	o = o.withDefaults(sc)
	p := Plan{
		Scenario:   sc.Name,
		Seed:       planSeed(o.Seed, sc.Name),
		Rate:       o.Rate,
		Duration:   o.Duration,
		ChurnEvery: sc.ChurnEvery,
	}
	rng := sim.NewRand(p.Seed)
	step := time.Duration(uint64(time.Second) / uint64(o.Rate))
	n := int(o.Duration / step)
	p.Reqs = make([]Req, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * step
		r := buildReq(sc.Name, at, rng)
		r.At = at
		p.Reqs = append(p.Reqs, r)
	}
	return p
}

// Per-scenario shape constants. Works are spin iterations (roughly
// cycles); deadlines and cancel windows are wall time.
const (
	getWorkBase   = 200
	getWorkSpread = 200
	putWork       = 800
	// rebuildWork makes a bulk rebuild hold the write lock on the order
	// of a millisecond on commodity hardware — past the read deadlines,
	// so reads queued behind a rebuild exercise the stale-snapshot path.
	rebuildWork = 600000

	readDeadline  = 2 * time.Millisecond
	burstDeadline = 1 * time.Millisecond

	burstPeriod = 250 * time.Millisecond
	burstLen    = 40 * time.Millisecond

	cancelFloor = 100 * time.Microsecond
	cancelMean  = 300 * time.Microsecond
)

// buildReq draws one request for scenario name arriving at offset at.
// All randomness comes from rng, in a fixed per-request draw order, so
// the plan is reproducible.
func buildReq(name string, at time.Duration, rng *sim.Rand) Req {
	switch name {
	case "read-heavy", "read-heavy-epoch", "goroutine-churn", "gomaxprocs-sweep", "map-read-heavy":
		if rng.Intn(100) < 95 {
			return getReq(rng, readDeadline)
		}
		return putReq(rng)
	case "write-burst":
		if at%burstPeriod < burstLen {
			switch d := rng.Intn(100); {
			case d < 40:
				return putReq(rng)
			case d < 45:
				return rebuildReq(rng)
			default:
				return getReq(rng, burstDeadline)
			}
		}
		if rng.Intn(100) < 10 {
			return putReq(rng)
		}
		return getReq(rng, burstDeadline)
	case "cancellation-storm":
		switch d := rng.Intn(100); {
		case d < 70:
			r := getReq(rng, 0)
			if rng.Intn(100) < 3 {
				r.CancelNow = true
			} else {
				r.CancelAfter = cancelFloor + time.Duration(expDraw(rng)*float64(cancelMean))
			}
			return r
		case d < 90:
			return putReq(rng)
		default:
			return rebuildReq(rng)
		}
	default:
		panic("loadsvc: unknown scenario " + name)
	}
}

func getReq(rng *sim.Rand, deadline time.Duration) Req {
	return Req{
		Kind:     OpGet,
		Key:      rng.Uint64n(TableKeys),
		Work:     uint32(getWorkBase + rng.Intn(getWorkSpread)),
		Deadline: deadline,
	}
}

func putReq(rng *sim.Rand) Req {
	return Req{
		Kind: OpPut,
		Key:  rng.Uint64n(TableKeys),
		Val:  rng.Uint64(),
		Work: putWork,
	}
}

func rebuildReq(rng *sim.Rand) Req {
	return Req{Kind: OpRebuild, Val: rng.Uint64(), Work: rebuildWork}
}

// expDraw samples a unit-mean exponential from rng.
func expDraw(rng *sim.Rand) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}
