package waitanalysis

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExpOptimalAlphaIsLnEMinus1(t *testing.T) {
	// Section 4.5.1: the optimal static polling limit under exponential
	// waiting times is ln(e-1) ≈ 0.5413.
	got := OptimalAlphaExp(1)
	if !close(got, AlphaExpOptimal, 0.02) {
		t.Fatalf("optimal alpha = %f, want ln(e-1) = %f", got, AlphaExpOptimal)
	}
}

func TestExpOptimalFactorIs158(t *testing.T) {
	// The resulting worst-case expected competitive factor is e/(e-1).
	got := ExpWorstFactor(AlphaExpOptimal, 1)
	if !close(got, FactorExpOptimal, 0.02) {
		t.Fatalf("worst factor at alpha* = %f, want %f", got, FactorExpOptimal)
	}
}

func TestExpAlphaOneIsWorse(t *testing.T) {
	// The classic Lpoll = B choice is 2-competitive in the worst case but
	// its *expected* factor against the restricted adversary must be
	// strictly worse than the optimal 1.58 and at most 2.
	f1 := ExpWorstFactor(1, 1)
	fOpt := ExpWorstFactor(AlphaExpOptimal, 1)
	if f1 <= fOpt {
		t.Fatalf("alpha=1 factor %f should exceed optimal %f", f1, fOpt)
	}
	if f1 > 2.0+1e-9 {
		t.Fatalf("alpha=1 factor %f exceeds the 2-competitive bound", f1)
	}
}

func TestUniformOptimalNearPoint62(t *testing.T) {
	// Section 4.5.2: α* ≈ 0.62 with factor ≈ 1.62.
	a := OptimalAlphaUniform(1)
	if !close(a, 0.62, 0.04) {
		t.Fatalf("uniform optimal alpha = %f, want ≈0.62", a)
	}
	f := UniformWorstFactor(a, 1)
	if !close(f, 1.62, 0.04) {
		t.Fatalf("uniform optimal factor = %f, want ≈1.62", f)
	}
}

func TestAlwaysPollUnboundedFactor(t *testing.T) {
	// Always-spin has unbounded expected factor as waiting times grow.
	if ExpFactor(math.Inf(1), 0.001, 1) < 10 {
		t.Fatal("always-poll should be terrible for long waits")
	}
	// Always-signal approaches factor B/E[C_opt] -> large for short waits.
	if ExpFactor(0, 100, 1) < 10 {
		t.Fatal("always-signal should be terrible for short waits")
	}
}

func TestTwoPhaseNeverBelowOne(t *testing.T) {
	f := func(ai, li uint16) bool {
		alpha := 0.01 + float64(ai%300)/100 // 0.01..3
		lambda := math.Pow(10, float64(li%120)/20-3)
		return ExpFactor(alpha, lambda, 1) >= 1-1e-9 &&
			UniformFactor(alpha, lambda, 1) >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostsDecreaseWithBeta(t *testing.T) {
	// Switch-spinning (β>1) polls more cheaply, so expected costs drop.
	for _, lambda := range []float64{0.1, 1, 10} {
		c1 := ExpTwoPhaseCost(1, lambda, 1)
		c4 := ExpTwoPhaseCost(1, lambda, 4)
		if c4 > c1+1e-12 {
			t.Fatalf("beta=4 cost %f exceeds beta=1 cost %f at lambda=%f", c4, c1, lambda)
		}
	}
}

func TestExpCostLimits(t *testing.T) {
	// As λ→∞ (instant satisfaction), all costs → 0 except pure signaling.
	if ExpTwoPhaseCost(0.5, 1e6, 1) > 0.01 {
		t.Fatal("cost should vanish for instant conditions")
	}
	if !close(ExpTwoPhaseCost(0, 1e6, 1), 1, 1e-9) {
		t.Fatal("always-signal cost must be exactly B")
	}
	// As λ→0 (infinite waits), two-phase cost → (1+α)B.
	if !close(ExpTwoPhaseCost(0.5, 1e-9, 1), 1.5, 1e-3) {
		t.Fatal("two-phase cost should approach (1+α)B for long waits")
	}
}

func TestUniformCostPiecewise(t *testing.T) {
	// When the polling window covers the whole support (αβ ≥ τ) the
	// algorithm never blocks: cost = mean wait / β.
	if !close(UniformTwoPhaseCost(2, 1.5, 1), 0.75, 1e-9) {
		t.Fatal("full-coverage uniform cost should be τ/2")
	}
	// Opt behaves the same at the βB boundary.
	if !close(UniformOptCost(0.5, 1), 0.25, 1e-9) {
		t.Fatal("opt with τ<β should be τ/2")
	}
}

func TestFigure44Shape(t *testing.T) {
	// Figure 4.4's qualitative content: near λB≈1 the 0.54B curve beats
	// the 1.0B curve; both stay below always-spin and always-block curves
	// in their respective bad regions.
	for _, lb := range []float64{0.3, 1, 3} {
		fOpt := ExpFactor(AlphaExpOptimal, lb, 1)
		if fOpt > FactorExpOptimal+0.01 {
			t.Fatalf("0.54B factor %f exceeds 1.58 bound at λB=%f", fOpt, lb)
		}
	}
}

func TestSwitchSpinBetaInvariance(t *testing.T) {
	// Switch-spinning (β>1) polls more cheaply, which lowers *expected
	// costs* at any fixed rate (TestCostsDecreaseWithBeta) — but against a
	// restricted adversary that controls the rate, β only reparameterizes
	// the adversary (substituting μ = λβ maps the β≠1 system onto β=1), so
	// the worst-case competitive factor is invariant: still e/(e−1) at the
	// same optimal α.
	f1 := ExpWorstFactor(OptimalAlphaExp(1), 1)
	f4 := ExpWorstFactor(OptimalAlphaExp(4), 4)
	if math.Abs(f4-f1) > 0.01 {
		t.Fatalf("worst-case factor should be beta-invariant: beta=1 %f, beta=4 %f", f1, f4)
	}
	a4 := OptimalAlphaExp(4)
	if math.Abs(a4-AlphaExpOptimal) > 0.02 {
		t.Fatalf("optimal alpha should be beta-invariant: %f vs %f", a4, AlphaExpOptimal)
	}
	u1 := UniformWorstFactor(OptimalAlphaUniform(1), 1)
	u4 := UniformWorstFactor(OptimalAlphaUniform(4), 4)
	if math.Abs(u4-u1) > 0.01 {
		t.Fatalf("uniform worst factor should be beta-invariant: %f vs %f", u1, u4)
	}
}
