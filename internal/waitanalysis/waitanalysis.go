// Package waitanalysis implements the closed-form expected-cost analysis of
// two-phase waiting algorithms from Sections 4.4-4.5: expected waiting
// costs under exponentially and uniformly distributed waiting times against
// a restricted adversary, the resulting expected competitive factors
// (Figures 4.4 and 4.5), and the derivation of the optimal static Lpoll.
//
// All costs are expressed in units of B, the fixed cost of the signaling
// mechanism. α denotes Lpoll/B. β is the polling-efficiency factor
// (1 for spinning; ≈ number of hardware contexts for switch-spinning).
//
// Headline results reproduced here:
//   - exponential waiting times: α* = ln(e−1) ≈ 0.5413 gives a worst-case
//     expected competitive factor of e/(e−1) ≈ 1.5820;
//   - uniform waiting times: α* ≈ 0.62 gives ≈ 1.62.
package waitanalysis

import "math"

// AlphaExpOptimal is ln(e-1), the optimal polling limit (in units of B)
// under exponentially distributed waiting times (Section 4.5.1).
var AlphaExpOptimal = math.Log(math.E - 1)

// FactorExpOptimal is e/(e-1), the optimal on-line competitive factor.
var FactorExpOptimal = math.E / (math.E - 1)

// --- Exponentially distributed waiting times, f(t) = λe^{-λt} ---

// ExpTwoPhaseCost returns E[C_2phase/α] in units of B for exponentially
// distributed waiting times with rate λ (lambda in units of 1/B) and
// polling efficiency beta. Polling for wall-time t costs t/β, so the
// polling phase ends at wall time αβB.
//
//	E = ∫₀^{αβB} (t/β) f(t) dt + (1+α)B ∫_{αβB}^∞ f(t) dt
func ExpTwoPhaseCost(alpha, lambda, beta float64) float64 {
	if math.IsInf(alpha, 1) {
		// always-poll: E[t]/β = 1/(λβ)
		return 1 / (lambda * beta)
	}
	if alpha <= 0 {
		return 1 // always-signal: B
	}
	x := alpha * beta // polling phase length (in B units of wall time)
	e := math.Exp(-lambda * x)
	poll := (1/lambda - e*(x+1/lambda)) / beta
	return poll + (1+alpha)*e
}

// ExpOptCost returns E[C_opt] in units of B: the off-line algorithm polls
// iff t < βB, so E = ∫₀^{βB} (t/β) f dt + B·P[t ≥ βB].
func ExpOptCost(lambda, beta float64) float64 {
	x := beta
	e := math.Exp(-lambda * x)
	poll := (1/lambda - e*(x+1/lambda)) / beta
	return poll + e
}

// ExpFactor returns the expected competitive factor
// E[C_2phase/α]/E[C_opt] at rate λ.
func ExpFactor(alpha, lambda, beta float64) float64 {
	return ExpTwoPhaseCost(alpha, lambda, beta) / ExpOptCost(lambda, beta)
}

// ExpWorstFactor returns sup over λ of ExpFactor — the competitive factor
// against a restricted adversary that controls the arrival rate.
func ExpWorstFactor(alpha, beta float64) float64 {
	return supOverRate(func(lambda float64) float64 {
		return ExpFactor(alpha, lambda, beta)
	})
}

// OptimalAlphaExp numerically finds the α minimizing ExpWorstFactor
// (Section 4.5.1 proves it equals ln(e−1) for β = 1).
func OptimalAlphaExp(beta float64) float64 {
	return argminAlpha(func(a float64) float64 { return ExpWorstFactor(a, beta) })
}

// --- Uniformly distributed waiting times, f(t) = 1/τ on [0, τ] ---

// UniformTwoPhaseCost returns E[C_2phase/α] in units of B for waiting times
// uniform on [0, τB].
func UniformTwoPhaseCost(alpha, tau, beta float64) float64 {
	if math.IsInf(alpha, 1) {
		return tau / (2 * beta)
	}
	if alpha <= 0 {
		return 1
	}
	x := alpha * beta // polling window (wall time, B units)
	if x >= tau {
		return tau / (2 * beta)
	}
	poll := x * x / (2 * beta * tau)
	return poll + (1+alpha)*(1-x/tau)
}

// UniformOptCost returns E[C_opt] for waiting times uniform on [0, τB].
func UniformOptCost(tau, beta float64) float64 {
	x := beta
	if x >= tau {
		return tau / (2 * beta)
	}
	return x*x/(2*beta*tau) + (1 - x/tau)
}

// UniformFactor returns the expected competitive factor at span τ.
func UniformFactor(alpha, tau, beta float64) float64 {
	return UniformTwoPhaseCost(alpha, tau, beta) / UniformOptCost(tau, beta)
}

// UniformWorstFactor returns sup over τ of UniformFactor.
func UniformWorstFactor(alpha, beta float64) float64 {
	return supOverRate(func(tau float64) float64 {
		return UniformFactor(alpha, tau, beta)
	})
}

// OptimalAlphaUniform numerically finds the α minimizing UniformWorstFactor
// (≈ 0.62 for β = 1, giving ≈ 1.62, Section 4.5.2).
func OptimalAlphaUniform(beta float64) float64 {
	return argminAlpha(func(a float64) float64 { return UniformWorstFactor(a, beta) })
}

// --- numeric helpers ---

// supOverRate evaluates f over a wide logarithmic grid of the adversary's
// parameter (rate λ or span τ) and refines around the max.
func supOverRate(f func(x float64) float64) float64 {
	best, bestX := 0.0, 0.0
	for i := -300; i <= 300; i++ {
		x := math.Pow(10, float64(i)/50) // 1e-6 .. 1e6
		if v := f(x); v > best {
			best, bestX = v, x
		}
	}
	// Golden-section refine around bestX (one decade each side).
	lo, hi := bestX/10, bestX*10
	for k := 0; k < 80; k++ {
		m1 := lo + (hi-lo)*0.382
		m2 := lo + (hi-lo)*0.618
		if f(m1) > f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	if v := f((lo + hi) / 2); v > best {
		best = v
	}
	return best
}

// argminAlpha minimizes g over α ∈ (0, 3] by golden-section search.
func argminAlpha(g func(a float64) float64) float64 {
	lo, hi := 0.01, 3.0
	for k := 0; k < 100; k++ {
		m1 := lo + (hi-lo)*0.382
		m2 := lo + (hi-lo)*0.618
		if g(m1) < g(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}
