package fetchop

import (
	"sort"
	"testing"

	"repro/internal/machine"
)

type maker struct {
	name string
	mk   func(m *machine.Machine) FetchOp
}

func allMakers() []maker {
	return []maker{
		{"tts-lock", func(m *machine.Machine) FetchOp { return NewTTSLockFOP(m.Mem, 0) }},
		{"queue-lock", func(m *machine.Machine) FetchOp { return NewQueueLockFOP(m.Mem, 0) }},
		{"combtree", func(m *machine.Machine) FetchOp { return NewCombTree(m.Mem, 0, 0) }},
		{"mp-central", func(m *machine.Machine) FetchOp { return NewMPCentral(0) }},
		{"mp-combtree", func(m *machine.Machine) FetchOp { return NewMPCombTree(m, 0, 0) }},
	}
}

// run executes procs processors each doing iters fetch&add(1) with random
// think time, returning all fetched values and the elapsed cycles.
func run(t *testing.T, mk func(m *machine.Machine) FetchOp, procs, iters int) ([]uint64, machine.Time) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(procs))
	f := mk(m)
	var got []uint64
	var end machine.Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				v := f.FetchAdd(c, 1)
				got = append(got, v)
				c.Advance(machine.Time(c.Rand().Intn(500)))
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%s: %v", f.Name(), err)
	}
	return got, end
}

// checkPermutation verifies the fetch&add results are exactly 0..n-1:
// the linearizability invariant for concurrent fetch-and-increment.
func checkPermutation(t *testing.T, name string, got []uint64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%s: %d results, want %d", name, len(got), n)
	}
	s := append([]uint64(nil), got...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, v := range s {
		if v != uint64(i) {
			t.Fatalf("%s: results are not a permutation of 0..%d (pos %d = %d)", name, n-1, i, v)
		}
	}
}

func TestFetchAddPermutationAllProtocols(t *testing.T) {
	for _, mk := range allMakers() {
		for _, procs := range []int{1, 2, 8, 16} {
			mk, procs := mk, procs
			t.Run(mk.name, func(t *testing.T) {
				iters := 10
				got, _ := run(t, mk.mk, procs, iters)
				checkPermutation(t, mk.name, got, procs*iters)
			})
		}
	}
}

func TestCombiningHappensUnderContention(t *testing.T) {
	m := machine.New(machine.DefaultConfig(16))
	tr := NewCombTree(m.Mem, 16, 0)
	for p := 0; p < 16; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 20; i++ {
				tr.FetchAdd(c, 1)
				c.Advance(machine.Time(c.Rand().Intn(200)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Combines == 0 {
		t.Fatal("no combining occurred under 16-way contention")
	}
}

func TestCombTreeContentionTradeoff(t *testing.T) {
	// Figure 3.2 shape: lock-based wins at 1 processor; the combining tree
	// must beat the TTS-lock-based protocol at 32 processors, where lock
	// contention serializes everything.
	perOp := func(mk func(m *machine.Machine) FetchOp, procs int) machine.Time {
		m := machine.New(machine.DefaultConfig(procs))
		f := mk(m)
		iters := 25
		var end machine.Time
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				for i := 0; i < iters; i++ {
					f.FetchAdd(c, 1)
					c.Advance(machine.Time(c.Rand().Intn(500)))
				}
				if c.Now() > end {
					end = c.Now()
				}
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return end / machine.Time(procs*iters)
	}
	lock1 := perOp(func(m *machine.Machine) FetchOp { return NewTTSLockFOP(m.Mem, 0) }, 1)
	tree1 := perOp(func(m *machine.Machine) FetchOp { return NewCombTree(m.Mem, 64, 0) }, 1)
	if lock1 >= tree1 {
		t.Errorf("at 1 proc, lock-based (%d) should beat combining tree (%d)", lock1, tree1)
	}
	lock32 := perOp(func(m *machine.Machine) FetchOp { return NewTTSLockFOP(m.Mem, 0) }, 32)
	tree32 := perOp(func(m *machine.Machine) FetchOp { return NewCombTree(m.Mem, 64, 0) }, 32)
	if tree32 >= lock32 {
		t.Errorf("at 32 procs, combining tree (%d) should beat tts-lock-based (%d)", tree32, lock32)
	}
}

func TestMPCentralIsTwoMessages(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	f := NewMPCentral(1)
	var lat machine.Time
	m.SpawnCPU(0, 0, "solo", func(c *machine.CPU) {
		start := c.Now()
		f.FetchAdd(c, 1)
		lat = c.Now() - start
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	min := cfg.MsgSend + 2*cfg.MsgNetwork + 2*cfg.MsgHandler
	// Polling quantizes: allow min..min+3 poll intervals.
	if lat < min || lat > min+30 {
		t.Fatalf("mp-central latency %d, want about %d", lat, min)
	}
}

func TestMPCombTreeCombines(t *testing.T) {
	m := machine.New(machine.DefaultConfig(16))
	f := NewMPCombTree(m, 16, 0)
	var got []uint64
	for p := 0; p < 16; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 10; i++ {
				got = append(got, f.FetchAdd(c, 1))
				c.Advance(machine.Time(c.Rand().Intn(100)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, "mp-combtree", got, 160)
	if f.Combines == 0 {
		t.Fatal("no message combining occurred")
	}
	if f.Value() != 160 {
		t.Fatalf("final value %d", f.Value())
	}
}

func TestDeterministicFetchOp(t *testing.T) {
	for _, mk := range allMakers() {
		_, e1 := run(t, mk.mk, 6, 8)
		_, e2 := run(t, mk.mk, 6, 8)
		if e1 != e2 {
			t.Errorf("%s: non-deterministic: %d vs %d", mk.name, e1, e2)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 4: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
