package fetchop

import (
	"repro/internal/machine"
)

// MPCentral is the centralized message-passing fetch-and-op of Section 3.6:
// the variable lives in the private memory of a home node; a fetch-and-op
// is a request message whose atomic handler applies the operation and sends
// the old value back — the theoretical minimum of two messages.
type MPCentral struct {
	home  int
	value uint64
}

// NewMPCentral creates the protocol with its variable on node home.
func NewMPCentral(home int) *MPCentral {
	return &MPCentral{home: home}
}

// Name implements FetchOp.
func (f *MPCentral) Name() string { return "mp-central" }

// Value returns the current value (for checkers; not a timed operation).
func (f *MPCentral) Value() uint64 { return f.value }

// FetchAdd implements FetchOp.
func (f *MPCentral) FetchAdd(c machine.Context, delta uint64) uint64 {
	type cell struct {
		result uint64
		done   bool
	}
	cl := &cell{}
	requester := c.ProcID()
	c.Send(f.home, func(h *machine.Handler) {
		old := f.value
		f.value += delta
		h.Send(requester, func(*machine.Handler) {
			cl.result = old
			cl.done = true
		})
	})
	for !cl.done {
		c.Advance(6)
	}
	return cl.result
}

// MPCombTree is the message-passing combining tree of Section 3.6. Tree
// node i runs on processor i mod P. A request message entering a node opens
// a combining window; requests arriving within the window are combined and
// a single message is relayed to the parent when the window closes. The
// root's handler applies the combined operation to node-private state and
// replies flow back down the tree, fanning out to the combined requesters.
type MPCombTree struct {
	m       *machine.Machine
	nleaves int
	window  machine.Time
	value   uint64
	state   []mpNodeState

	// Combines counts requests satisfied by combining (stats).
	Combines uint64
}

type mpNodeState struct {
	pending    []mpPend
	windowOpen bool
}

type mpPend struct {
	value   uint64
	deliver func(h *machine.Handler, base uint64)
}

// DefaultWindow is the message-combining window length in cycles.
const DefaultWindow machine.Time = 48

// NewMPCombTree builds a message-passing combining tree with nleaves leaves
// (rounded to a power of two, minimum 2).
func NewMPCombTree(m *machine.Machine, nleaves int, window machine.Time) *MPCombTree {
	n := nextPow2(nleaves)
	if window == 0 {
		window = DefaultWindow
	}
	return &MPCombTree{
		m:       m,
		nleaves: n,
		window:  window,
		state:   make([]mpNodeState, n),
	}
}

// Name implements FetchOp.
func (t *MPCombTree) Name() string { return "mp-combining-tree" }

// Value returns the current value (checker use only).
func (t *MPCombTree) Value() uint64 { return t.value }

// nodeProc maps tree node i to its hosting processor.
func (t *MPCombTree) nodeProc(i int) int { return i % t.m.NumProcs() }

func (t *MPCombTree) leafParent(proc int) int {
	return (t.nleaves + proc%t.nleaves) / 2
}

// arrive processes a (possibly already combined) request at tree node i.
// Runs inside an atomic handler on nodeProc(i).
func (t *MPCombTree) arrive(h *machine.Handler, i int, p mpPend) {
	if i == 1 {
		// Root: apply and reply.
		old := t.value
		t.value += p.value
		p.deliver(h, old)
		return
	}
	st := &t.state[i]
	st.pending = append(st.pending, p)
	if st.windowOpen {
		t.Combines++
		return
	}
	st.windowOpen = true
	h.After(t.window, t.nodeProc(i), func(h2 *machine.Handler) {
		t.flush(h2, i)
	})
}

// flush closes node i's combining window: combine pending requests into one
// relayed message whose reply fans back out.
func (t *MPCombTree) flush(h *machine.Handler, i int) {
	st := &t.state[i]
	batch := st.pending
	st.pending = nil
	st.windowOpen = false
	if len(batch) == 0 {
		return
	}
	var total uint64
	offsets := make([]uint64, len(batch))
	for j, b := range batch {
		offsets[j] = total
		total += b.value
	}
	parent := i / 2
	combined := mpPend{
		value: total,
		deliver: func(h2 *machine.Handler, base uint64) {
			for j, b := range batch {
				b.deliver(h2, base+offsets[j])
			}
		},
	}
	h.Send(t.nodeProc(parent), func(h2 *machine.Handler) {
		t.arrive(h2, parent, combined)
	})
}

// FetchAdd implements FetchOp.
func (t *MPCombTree) FetchAdd(c machine.Context, delta uint64) uint64 {
	type cell struct {
		result uint64
		done   bool
	}
	cl := &cell{}
	requester := c.ProcID()
	entry := t.leafParent(requester)
	c.Send(t.nodeProc(entry), func(h *machine.Handler) {
		t.arrive(h, entry, mpPend{
			value: delta,
			deliver: func(h2 *machine.Handler, base uint64) {
				h2.Send(requester, func(*machine.Handler) {
					cl.result = base
					cl.done = true
				})
			},
		})
	})
	for !cl.done {
		c.Advance(6)
	}
	return cl.result
}
