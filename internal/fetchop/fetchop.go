// Package fetchop implements the passive fetch-and-op protocols of
// Section 3.1.2: centralized variables protected by test-and-test-and-set
// or MCS queue locks, the Goodman-Vernon-Woest software combining tree
// (Appendix C), a message-passing centralized protocol, and a
// message-passing combining tree (Section 3.6).
//
// Fetch-and-add stands in for the combinable fetch-and-op operation, as in
// the thesis's experiments.
package fetchop

import (
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/spinlock"
)

// FetchOp computes fetch-and-add atomically across the simulated machine.
type FetchOp interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// FetchAdd atomically adds delta and returns the previous value.
	FetchAdd(c machine.Context, delta uint64) uint64
}

// LockFOP is the lock-based fetch-and-op: acquire, update, release.
type LockFOP struct {
	lock spinlock.Lock
	v    memsys.Addr
	name string
}

// NewTTSLockFOP builds a fetch-and-op variable protected by a
// test-and-test-and-set lock, both homed on node home.
func NewTTSLockFOP(mem *memsys.System, home int) *LockFOP {
	return &LockFOP{
		lock: spinlock.NewTTS(mem, home, spinlock.DefaultBackoff),
		v:    mem.Alloc(home, 1),
		name: "tts-lock-fop",
	}
}

// NewQueueLockFOP builds a fetch-and-op variable protected by an MCS lock.
func NewQueueLockFOP(mem *memsys.System, home int) *LockFOP {
	return &LockFOP{
		lock: spinlock.NewMCS(mem, home),
		v:    mem.Alloc(home, 1),
		name: "queue-lock-fop",
	}
}

// Name implements FetchOp.
func (f *LockFOP) Name() string { return f.name }

// FetchAdd implements FetchOp.
func (f *LockFOP) FetchAdd(c machine.Context, delta uint64) uint64 {
	h := f.lock.Acquire(c)
	old := c.Read(f.v)
	c.Write(f.v, old+delta)
	f.lock.Release(c, h)
	return old
}

// nextPow2 returns the smallest power of two >= n (minimum 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p *= 2
	}
	return p
}
