package fetchop

import (
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Deposit-cell states (simulated words waiters spin on).
const (
	ctPending uint64 = 0 // request deposited, no result yet
	ctOK      uint64 = 1 // result delivered
	ctInvalid uint64 = 2 // protocol invalidated; retry (reactive algorithm)
)

// CombTree is a software combining tree for fetch-and-add in the style of
// Goodman, Vernon and Woest (the thesis's Appendix C). Processes climb a
// radix-2 tree from their assigned leaf toward the root. At each internal
// node a climber that finds a deposited request *combines* with it (adds
// the values and continues up, later distributing the partner's share);
// otherwise it deposits its own accumulated request and waits. A waiter
// whose deposit is not picked up within a patience window withdraws it and
// climbs alone — so a solo process pays the full tree traversal (the high
// low-contention protocol cost of Figure 3.2), while under contention
// combining parallelizes the operation and per-op overhead falls.
//
// The root is the protocol's consensus object (Section 3.3.2): exactly one
// process at a time holds the root lock and applies the combined operation.
// RootApply can be replaced to interpose validity checks; returning
// ok=false makes every process in the combined batch observe an invalid
// execution and retry (used by the reactive fetch-and-op).
type CombTree struct {
	mem      *memsys.System
	nleaves  int
	nodes    []*ctNode // heap-indexed; 1 is the root, 2..nleaves-1 internal
	central  memsys.Addr
	patience machine.Time
	reqs     []*ctReq // per-processor reusable request cells

	// RootApply performs the operation at the root while the root lock is
	// held. combined is the summed delta and ops the number of combined
	// requests reaching the root together (the combining-rate signal the
	// reactive fetch-and-op monitors). It returns the base value and
	// whether the protocol was valid.
	RootApply func(c machine.Context, combined uint64, ops int) (uint64, bool)

	// Combines counts requests that were satisfied by combining (stats).
	Combines uint64
}

type ctNode struct {
	lock    memsys.Addr
	deposit *ctReq // guarded by lock
}

// ctReq is a deposited request. The ready word lives in the depositor's
// local memory so waiting is local spinning; result is Go-side state that
// is written strictly before ready is set (the engine serializes actors,
// so the waiter cannot observe ready without result being current).
type ctReq struct {
	value  uint64
	count  int
	ready  memsys.Addr
	result uint64
}

type ctPartner struct {
	req    *ctReq
	offset uint64
}

// DefaultPatience is the combining window: how long a depositor waits to be
// combined with before withdrawing and climbing alone.
const DefaultPatience machine.Time = 160

// NewCombTree builds a combining tree with nleaves leaves (rounded up to a
// power of two, minimum 2) over the machine's memory. Node i is homed on
// node i mod NumNodes to spread directory traffic.
func NewCombTree(mem *memsys.System, nleaves int, patience machine.Time) *CombTree {
	n := nextPow2(nleaves)
	if patience == 0 {
		patience = DefaultPatience
	}
	procs := mem.Config().NumNodes
	t := &CombTree{
		mem:      mem,
		nleaves:  n,
		nodes:    make([]*ctNode, n),
		central:  mem.Alloc(0, 1),
		patience: patience,
		reqs:     make([]*ctReq, procs),
	}
	for i := 1; i < n; i++ {
		t.nodes[i] = &ctNode{lock: mem.Alloc(i%procs, 1)}
	}
	t.RootApply = func(c machine.Context, combined uint64, ops int) (uint64, bool) {
		old := c.Read(t.central)
		c.Write(t.central, old+combined)
		return old, true
	}
	return t
}

// Name implements FetchOp.
func (t *CombTree) Name() string { return "combining-tree" }

// Central returns the address of the fetch-and-op variable.
func (t *CombTree) Central() memsys.Addr { return t.central }

// RootLock returns the root node's lock address — the consensus object.
func (t *CombTree) RootLock() memsys.Addr { return t.nodes[1].lock }

// leafParent returns the heap index of the internal node above proc's leaf.
func (t *CombTree) leafParent(proc int) int {
	leaf := t.nleaves + proc%t.nleaves
	return leaf / 2
}

func (t *CombTree) lockNode(c machine.Context, n *ctNode) {
	for {
		for c.Read(n.lock) != 0 {
			c.Advance(2)
		}
		if c.TestAndSet(n.lock) == 0 {
			return
		}
		c.Advance(c.Rand().Uint64n(16) + 1)
	}
}

func (t *CombTree) unlockNode(c machine.Context, n *ctNode) {
	c.Write(n.lock, 0)
}

// myReq returns proc's reusable request cell reset for a new operation.
func (t *CombTree) myReq(c machine.Context, v uint64, count int) *ctReq {
	p := c.ProcID()
	r := t.reqs[p]
	if r == nil {
		r = &ctReq{ready: t.mem.Alloc(p, 1)}
		t.reqs[p] = r
	}
	r.value = v
	r.count = count
	c.Write(r.ready, ctPending)
	return r
}

// FetchAdd implements FetchOp. It panics if RootApply reports invalid —
// the passive tree is always valid; the reactive algorithm uses TryFetchAdd.
func (t *CombTree) FetchAdd(c machine.Context, delta uint64) uint64 {
	v, ok := t.TryFetchAdd(c, delta)
	if !ok {
		panic("fetchop: passive combining tree invalidated")
	}
	return v
}

// TryFetchAdd executes the combining-tree protocol once. ok=false means the
// protocol was invalid at the root (reactive protocol change in progress);
// the caller must retry via its dispatch procedure.
func (t *CombTree) TryFetchAdd(c machine.Context, delta uint64) (uint64, bool) {
	v := delta
	count := 1
	var partners []ctPartner
	node := t.leafParent(c.ProcID())
	for {
		n := t.nodes[node]
		t.lockNode(c, n)
		if node == 1 {
			// In-consensus: apply the combined operation at the root.
			base, ok := t.RootApply(c, v, count)
			t.unlockNode(c, n)
			t.distribute(c, partners, base, ok)
			return base, ok
		}
		if n.deposit != nil {
			// Combine: take the waiting request along.
			req := n.deposit
			n.deposit = nil
			t.unlockNode(c, n)
			c.Advance(4)
			partners = append(partners, ctPartner{req: req, offset: v})
			v += req.value
			count += req.count
			t.Combines++
			node /= 2
			continue
		}
		// Deposit our accumulated request and wait to be combined with.
		req := t.myReq(c, v, count)
		n.deposit = req
		t.unlockNode(c, n)
		st, withdrawn := t.waitDeposit(c, n, req)
		if withdrawn {
			node /= 2
			continue
		}
		if st == ctOK {
			t.distribute(c, partners, req.result, true)
			return req.result, true
		}
		t.distribute(c, partners, 0, false)
		return 0, false
	}
}

// waitDeposit polls the request's ready word. Within the patience window an
// untaken deposit is withdrawn (withdrawn=true); once taken, the waiter is
// in the wait-consensus phase and waits indefinitely for its result or an
// invalid signal.
func (t *CombTree) waitDeposit(c machine.Context, n *ctNode, req *ctReq) (uint64, bool) {
	deadline := c.Now() + t.patience
	for c.Now() < deadline {
		if st := c.Read(req.ready); st != ctPending {
			return st, false
		}
		c.Advance(2)
	}
	t.lockNode(c, n)
	if n.deposit == req {
		n.deposit = nil
		t.unlockNode(c, n)
		return 0, true
	}
	t.unlockNode(c, n)
	for {
		if st := c.Read(req.ready); st != ctPending {
			return st, false
		}
		c.Advance(2)
	}
}

// distribute delivers results (or the invalid signal) to every combined
// partner, top-down.
func (t *CombTree) distribute(c machine.Context, partners []ctPartner, base uint64, ok bool) {
	for i := len(partners) - 1; i >= 0; i-- {
		pr := partners[i]
		if ok {
			pr.req.result = base + pr.offset
			c.Write(pr.req.ready, ctOK)
		} else {
			c.Write(pr.req.ready, ctInvalid)
		}
	}
}

// SetPatience adjusts the combining window (tuning; Section 3.7.2).
func (t *CombTree) SetPatience(p machine.Time) { t.patience = p }
